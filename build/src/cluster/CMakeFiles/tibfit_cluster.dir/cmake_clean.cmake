file(REMOVE_RECURSE
  "CMakeFiles/tibfit_cluster.dir/base_station.cc.o"
  "CMakeFiles/tibfit_cluster.dir/base_station.cc.o.d"
  "CMakeFiles/tibfit_cluster.dir/cluster_head.cc.o"
  "CMakeFiles/tibfit_cluster.dir/cluster_head.cc.o.d"
  "CMakeFiles/tibfit_cluster.dir/deployment.cc.o"
  "CMakeFiles/tibfit_cluster.dir/deployment.cc.o.d"
  "CMakeFiles/tibfit_cluster.dir/energy.cc.o"
  "CMakeFiles/tibfit_cluster.dir/energy.cc.o.d"
  "CMakeFiles/tibfit_cluster.dir/leach.cc.o"
  "CMakeFiles/tibfit_cluster.dir/leach.cc.o.d"
  "CMakeFiles/tibfit_cluster.dir/shadow.cc.o"
  "CMakeFiles/tibfit_cluster.dir/shadow.cc.o.d"
  "libtibfit_cluster.a"
  "libtibfit_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tibfit_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
