# Empty compiler generated dependencies file for tibfit_cluster.
# This may be replaced when dependencies are built.
