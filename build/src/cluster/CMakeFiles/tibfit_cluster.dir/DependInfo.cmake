
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/base_station.cc" "src/cluster/CMakeFiles/tibfit_cluster.dir/base_station.cc.o" "gcc" "src/cluster/CMakeFiles/tibfit_cluster.dir/base_station.cc.o.d"
  "/root/repo/src/cluster/cluster_head.cc" "src/cluster/CMakeFiles/tibfit_cluster.dir/cluster_head.cc.o" "gcc" "src/cluster/CMakeFiles/tibfit_cluster.dir/cluster_head.cc.o.d"
  "/root/repo/src/cluster/deployment.cc" "src/cluster/CMakeFiles/tibfit_cluster.dir/deployment.cc.o" "gcc" "src/cluster/CMakeFiles/tibfit_cluster.dir/deployment.cc.o.d"
  "/root/repo/src/cluster/energy.cc" "src/cluster/CMakeFiles/tibfit_cluster.dir/energy.cc.o" "gcc" "src/cluster/CMakeFiles/tibfit_cluster.dir/energy.cc.o.d"
  "/root/repo/src/cluster/leach.cc" "src/cluster/CMakeFiles/tibfit_cluster.dir/leach.cc.o" "gcc" "src/cluster/CMakeFiles/tibfit_cluster.dir/leach.cc.o.d"
  "/root/repo/src/cluster/shadow.cc" "src/cluster/CMakeFiles/tibfit_cluster.dir/shadow.cc.o" "gcc" "src/cluster/CMakeFiles/tibfit_cluster.dir/shadow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tibfit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tibfit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tibfit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tibfit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/tibfit_sensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
