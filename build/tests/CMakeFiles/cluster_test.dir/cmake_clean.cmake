file(REMOVE_RECURSE
  "CMakeFiles/cluster_test.dir/cluster_head_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster_head_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/deployment_test.cc.o"
  "CMakeFiles/cluster_test.dir/deployment_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/leach_test.cc.o"
  "CMakeFiles/cluster_test.dir/leach_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/shadow_base_station_test.cc.o"
  "CMakeFiles/cluster_test.dir/shadow_base_station_test.cc.o.d"
  "cluster_test"
  "cluster_test.pdb"
  "cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
