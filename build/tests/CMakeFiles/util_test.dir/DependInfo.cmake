
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ascii_field_test.cc" "tests/CMakeFiles/util_test.dir/ascii_field_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/ascii_field_test.cc.o.d"
  "/root/repo/tests/config_test.cc" "tests/CMakeFiles/util_test.dir/config_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/config_test.cc.o.d"
  "/root/repo/tests/geometry_test.cc" "tests/CMakeFiles/util_test.dir/geometry_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/geometry_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/util_test.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/rng_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/util_test.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/stats_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/util_test.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/table_test.cc.o.d"
  "/root/repo/tests/vec2_test.cc" "tests/CMakeFiles/util_test.dir/vec2_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/vec2_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/tibfit_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tibfit_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/tibfit_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tibfit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tibfit_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tibfit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tibfit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tibfit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
