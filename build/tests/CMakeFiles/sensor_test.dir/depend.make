# Empty dependencies file for sensor_test.
# This may be replaced when dependencies are built.
