file(REMOVE_RECURSE
  "CMakeFiles/sensor_test.dir/fault_model_test.cc.o"
  "CMakeFiles/sensor_test.dir/fault_model_test.cc.o.d"
  "CMakeFiles/sensor_test.dir/mobility_test.cc.o"
  "CMakeFiles/sensor_test.dir/mobility_test.cc.o.d"
  "CMakeFiles/sensor_test.dir/sensor_node_test.cc.o"
  "CMakeFiles/sensor_test.dir/sensor_node_test.cc.o.d"
  "sensor_test"
  "sensor_test.pdb"
  "sensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
