file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/binary_arbiter_test.cc.o"
  "CMakeFiles/core_test.dir/binary_arbiter_test.cc.o.d"
  "CMakeFiles/core_test.dir/collusion_detector_test.cc.o"
  "CMakeFiles/core_test.dir/collusion_detector_test.cc.o.d"
  "CMakeFiles/core_test.dir/concurrent_manager_test.cc.o"
  "CMakeFiles/core_test.dir/concurrent_manager_test.cc.o.d"
  "CMakeFiles/core_test.dir/decision_engine_test.cc.o"
  "CMakeFiles/core_test.dir/decision_engine_test.cc.o.d"
  "CMakeFiles/core_test.dir/event_clusterer_test.cc.o"
  "CMakeFiles/core_test.dir/event_clusterer_test.cc.o.d"
  "CMakeFiles/core_test.dir/location_arbiter_test.cc.o"
  "CMakeFiles/core_test.dir/location_arbiter_test.cc.o.d"
  "CMakeFiles/core_test.dir/metamorphic_test.cc.o"
  "CMakeFiles/core_test.dir/metamorphic_test.cc.o.d"
  "CMakeFiles/core_test.dir/trust_test.cc.o"
  "CMakeFiles/core_test.dir/trust_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
