# Empty dependencies file for bench_ext_collusion.
# This may be replaced when dependencies are built.
