file(REMOVE_RECURSE
  "../bench/bench_ext_collusion"
  "../bench/bench_ext_collusion.pdb"
  "CMakeFiles/bench_ext_collusion.dir/bench_ext_collusion.cc.o"
  "CMakeFiles/bench_ext_collusion.dir/bench_ext_collusion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
