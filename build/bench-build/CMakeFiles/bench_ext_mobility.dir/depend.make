# Empty dependencies file for bench_ext_mobility.
# This may be replaced when dependencies are built.
