file(REMOVE_RECURSE
  "../bench/bench_ext_mobility"
  "../bench/bench_ext_mobility.pdb"
  "CMakeFiles/bench_ext_mobility.dir/bench_ext_mobility.cc.o"
  "CMakeFiles/bench_ext_mobility.dir/bench_ext_mobility.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
