# Empty compiler generated dependencies file for bench_ext_multihop.
# This may be replaced when dependencies are built.
