file(REMOVE_RECURSE
  "../bench/bench_ext_multihop"
  "../bench/bench_ext_multihop.pdb"
  "CMakeFiles/bench_ext_multihop.dir/bench_ext_multihop.cc.o"
  "CMakeFiles/bench_ext_multihop.dir/bench_ext_multihop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
