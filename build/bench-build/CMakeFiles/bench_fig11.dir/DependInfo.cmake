
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11.cc" "bench-build/CMakeFiles/bench_fig11.dir/bench_fig11.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig11.dir/bench_fig11.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/tibfit_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tibfit_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/tibfit_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tibfit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tibfit_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tibfit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tibfit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tibfit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
