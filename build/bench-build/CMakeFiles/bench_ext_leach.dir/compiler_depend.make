# Empty compiler generated dependencies file for bench_ext_leach.
# This may be replaced when dependencies are built.
