file(REMOVE_RECURSE
  "../bench/bench_ext_leach"
  "../bench/bench_ext_leach.pdb"
  "CMakeFiles/bench_ext_leach.dir/bench_ext_leach.cc.o"
  "CMakeFiles/bench_ext_leach.dir/bench_ext_leach.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_leach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
