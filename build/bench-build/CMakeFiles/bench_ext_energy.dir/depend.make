# Empty dependencies file for bench_ext_energy.
# This may be replaced when dependencies are built.
