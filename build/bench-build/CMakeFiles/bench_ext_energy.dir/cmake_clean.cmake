file(REMOVE_RECURSE
  "../bench/bench_ext_energy"
  "../bench/bench_ext_energy.pdb"
  "CMakeFiles/bench_ext_energy.dir/bench_ext_energy.cc.o"
  "CMakeFiles/bench_ext_energy.dir/bench_ext_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
