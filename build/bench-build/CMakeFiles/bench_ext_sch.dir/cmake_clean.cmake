file(REMOVE_RECURSE
  "../bench/bench_ext_sch"
  "../bench/bench_ext_sch.pdb"
  "CMakeFiles/bench_ext_sch.dir/bench_ext_sch.cc.o"
  "CMakeFiles/bench_ext_sch.dir/bench_ext_sch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
