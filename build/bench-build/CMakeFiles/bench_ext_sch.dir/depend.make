# Empty dependencies file for bench_ext_sch.
# This may be replaced when dependencies are built.
