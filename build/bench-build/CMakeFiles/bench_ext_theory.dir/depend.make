# Empty dependencies file for bench_ext_theory.
# This may be replaced when dependencies are built.
