file(REMOVE_RECURSE
  "../bench/bench_ext_theory"
  "../bench/bench_ext_theory.pdb"
  "CMakeFiles/bench_ext_theory.dir/bench_ext_theory.cc.o"
  "CMakeFiles/bench_ext_theory.dir/bench_ext_theory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
